package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tree"
	"repro/internal/workload"
)

func writeTempTree(t *testing.T) string {
	t.Helper()
	tr := workload.MustSynthetic(workload.NewRNG(3), workload.SyntheticOptions{Nodes: 200})
	path := filepath.Join(t.TempDir(), "t.tree")
	if err := tree.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllHeuristics(t *testing.T) {
	path := writeTempTree(t)
	// Silence the report output.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	for _, heur := range []string{"MemBooking", "Activation", "MemBookingRedTree"} {
		if err := run(path, heur, 4, 0, 3, "memPO", "CP", false, false); err != nil {
			t.Errorf("%s: %v", heur, err)
		}
	}
	// Gantt + memory profile paths.
	if err := run(path, "MemBooking", 4, 0, 2, "memPO", "memPO", true, true); err != nil {
		t.Errorf("gantt/memprofile: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTempTree(t)
	if err := run(path, "Nope", 4, 0, 2, "memPO", "memPO", false, false); err == nil {
		t.Error("unknown heuristic accepted")
	}
	if err := run(path, "MemBooking", 4, 0, 2, "CP", "memPO", false, false); err == nil {
		t.Error("non-topological AO accepted")
	}
	if err := run(path, "MemBooking", 4, 0, 2, "bogus", "memPO", false, false); err == nil {
		t.Error("unknown AO accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.tree"), "MemBooking", 4, 0, 2, "memPO", "memPO", false, false); err == nil {
		t.Error("missing file accepted")
	}
}
