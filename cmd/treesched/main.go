// Command treesched schedules a .tree file with one of the three
// heuristics and prints the resulting makespan, memory behaviour, lower
// bounds and scheduling overhead.
//
// Usage:
//
//	treesched -heur MemBooking -p 8 -memfactor 2 tree.tree
//	treesched -heur Activation -p 4 -mem 1e9 -ao memPO -eo CP tree.tree
//
// The memory bound is either absolute (-mem) or a multiple of the
// minimum sequential memory (-memfactor, the paper's normalised bound).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/order"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
)

func main() {
	var (
		heur      = flag.String("heur", "MemBooking", "heuristic: MemBooking, Activation, MemBookingRedTree")
		p         = flag.Int("p", 8, "processors")
		mem       = flag.Float64("mem", 0, "absolute memory bound (overrides -memfactor)")
		memFactor = flag.Float64("memfactor", 2, "memory bound as a multiple of the minimum sequential memory")
		aoName    = flag.String("ao", order.NameMemPO, "activation order: memPO, perfPO, OptSeq, naturalPO, avgMemPO")
		eoName    = flag.String("eo", order.NameMemPO, "execution order: memPO, perfPO, CP, OptSeq, naturalPO, avgMemPO")
		gantt     = flag.Bool("gantt", false, "render an ASCII Gantt chart (MemBooking only)")
		memProf   = flag.Bool("memprofile", false, "render an ASCII memory profile")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: treesched [flags] tree.tree")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *heur, *p, *mem, *memFactor, *aoName, *eoName, *gantt, *memProf); err != nil {
		fmt.Fprintln(os.Stderr, "treesched:", err)
		os.Exit(1)
	}
}

func run(path, heur string, p int, mem, memFactor float64, aoName, eoName string, gantt, memProf bool) error {
	t, err := tree.ReadFile(path)
	if err != nil {
		return err
	}
	st := t.ComputeStats()
	_, minPeak := order.MinMemPostOrder(t)
	m := mem
	if m == 0 {
		m = memFactor * minPeak
	}
	ao, _, err := order.ByName(t, aoName)
	if err != nil {
		return err
	}
	if !ao.Topological {
		return fmt.Errorf("activation order %s is not topological", aoName)
	}
	eo, _, err := order.ByName(t, eoName)
	if err != nil {
		return err
	}

	var (
		s   core.Scheduler
		run = t
	)
	var recorder *trace.Recorder
	switch heur {
	case "MemBooking":
		s, err = core.NewMemBooking(t, m, ao, eo)
	case "Activation":
		s, err = baseline.NewActivation(t, m, ao, eo)
	case "MemBookingRedTree":
		var rs *baseline.MemBookingRedTree
		rs, err = baseline.NewMemBookingRedTree(t, m, ao, eo)
		if err == nil {
			s, run = rs, rs.Tree()
		}
	default:
		return fmt.Errorf("unknown heuristic %q", heur)
	}
	if err != nil {
		return err
	}

	fmt.Printf("tree        %s (%d nodes, height %d, max degree %d)\n",
		path, st.Nodes, st.Height, st.MaxDegree)
	fmt.Printf("min memory  %.6g (peak of memPO)\n", minPeak)
	fmt.Printf("bound       %.6g (%.3gx)\n", m, m/minPeak)
	if gantt {
		recorder = trace.NewRecorder(run, s)
		s = recorder
	}
	var samples []trace.MemSample
	opts := &sim.Options{CheckMemory: true, Bound: m}
	if memProf {
		opts.MemTrace = func(at, used, booked float64) {
			samples = append(samples, trace.MemSample{Time: at, Used: used, Booked: booked})
		}
	}
	res, err := sim.Run(run, p, s, opts)
	if err != nil {
		return err
	}
	lb, err := bounds.Best(t, p, m)
	if err != nil {
		return err
	}
	classical := bounds.Classical(t, p)
	memLB, _ := bounds.Memory(t, m)
	fmt.Printf("heuristic   %s on %d processors (AO=%s, EO=%s)\n", s.Name(), p, aoName, eoName)
	fmt.Printf("makespan    %.6g (%.4gx the lower bound)\n", res.Makespan, res.Makespan/lb)
	fmt.Printf("lower bnds  classical %.6g, memory-aware %.6g\n", classical, memLB)
	fmt.Printf("memory      peak used %.6g (%.1f%% of bound), peak booked %.6g\n",
		res.PeakMem, 100*res.PeakMem/m, res.PeakBooked)
	fmt.Printf("utilization %.1f%%  scheduling time %v\n", 100*res.Utilization(p), res.SchedTime)
	if recorder != nil {
		fmt.Println()
		if err := trace.Gantt(os.Stdout, recorder.Spans(), res.Makespan, 100); err != nil {
			return err
		}
	}
	if memProf {
		fmt.Println()
		if err := trace.RenderMemory(os.Stdout, samples, m, 100, 10); err != nil {
			return err
		}
	}
	return nil
}
