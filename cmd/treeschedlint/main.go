// Command treeschedlint is the repo's contract checker: a vet-style
// multichecker bundling the analyzers of internal/analysis
// (policypure, detfree, poollife, errtyped, hotalloc, locksafe,
// goroleak). It runs two ways:
//
// As a vet tool — the mode CI uses (scripts/lint.sh):
//
//	go build -o bin/treeschedlint ./cmd/treeschedlint
//	go vet -vettool=$(pwd)/bin/treeschedlint ./...
//
// go vet hands it one compilation unit at a time with compiler export
// data, so typechecking is fast and results are build-cached.
//
// Standalone — convenient during development:
//
//	go run ./cmd/treeschedlint ./...
//	go run ./cmd/treeschedlint -detfree ./internal/trace
//
// Standalone mode loads packages from source (no build step needed).
// In both modes -<analyzer>[=false] selects a subset, diagnostics are
// printed as file:line:col: message [analyzer], and the exit status is
// nonzero iff diagnostics were reported. Standalone mode also takes
// -json, which emits one JSON object per finding (analyzer, pos,
// message, suppressed) on stdout — suppressed findings included, for
// auditability — with exit status keyed to unsuppressed findings only.
// A finding that is a proven false positive can be suppressed at the
// site with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it (see DESIGN.md §11).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/detfree"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/errtyped"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/policypure"
	"repro/internal/analysis/poollife"
	"repro/internal/analysis/unitchecker"
)

var analyzers = []*analysis.Analyzer{
	policypure.Analyzer,
	detfree.Analyzer,
	poollife.Analyzer,
	errtyped.Analyzer,
	hotalloc.Analyzer,
	locksafe.Analyzer,
	goroleak.Analyzer,
}

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// `go vet` speaks the unitchecker protocol: -flags, -V=full, or a
	// single *.cfg argument. Anything else is a standalone invocation
	// with package patterns.
	if unitchecker.IsCfgArgs(args) || hasProtocolFlag(args) {
		if err := unitchecker.Main(progname, args, analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(2)
		}
		return
	}
	os.Exit(standalone(progname, args))
}

func hasProtocolFlag(args []string) bool {
	for _, a := range args {
		switch a {
		case "-flags", "--flags", "-V=full", "--V=full":
			return true
		}
	}
	return false
}

// jsonFinding is the -json output shape: one object per finding, one
// finding per line (JSON Lines), suppressed findings included.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	Pos        string `json:"pos"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func standalone(progname string, args []string) int {
	jsonMode := false
	var rest []string
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonMode = true
			continue
		}
		rest = append(rest, a)
	}
	selected, patterns := unitchecker.SelectByFlags(analyzers, rest)
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := load.New(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	session := driver.New(loader, selected)
	enc := json.NewEncoder(os.Stdout)
	exit := 0
	for _, path := range paths {
		findings, err := session.Run(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			exit = 2
			continue
		}
		for _, f := range findings {
			pos := loader.Fset().Position(f.Diag.Pos).String()
			if jsonMode {
				enc.Encode(jsonFinding{
					Analyzer:   f.Analyzer,
					Pos:        pos,
					Message:    f.Diag.Message,
					Suppressed: f.Diag.Suppressed,
				})
			} else if !f.Diag.Suppressed {
				fmt.Printf("%s: %s [%s]\n", pos, f.Diag.Message, f.Analyzer)
			}
			if !f.Diag.Suppressed && exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}
