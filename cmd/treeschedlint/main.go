// Command treeschedlint is the repo's contract checker: a vet-style
// multichecker bundling the four analyzers of internal/analysis
// (policypure, detfree, poollife, errtyped). It runs two ways:
//
// As a vet tool — the mode CI uses (scripts/lint.sh):
//
//	go build -o bin/treeschedlint ./cmd/treeschedlint
//	go vet -vettool=$(pwd)/bin/treeschedlint ./...
//
// go vet hands it one compilation unit at a time with compiler export
// data, so typechecking is fast and results are build-cached.
//
// Standalone — convenient during development:
//
//	go run ./cmd/treeschedlint ./...
//	go run ./cmd/treeschedlint -detfree ./internal/trace
//
// Standalone mode loads packages from source (no build step needed).
// In both modes -<analyzer>[=false] selects a subset, diagnostics are
// printed as file:line:col: message [analyzer], and the exit status is
// nonzero iff diagnostics were reported. A finding that is a proven
// false positive can be suppressed at the site with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it (see DESIGN.md §11).
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/detfree"
	"repro/internal/analysis/errtyped"
	"repro/internal/analysis/load"
	"repro/internal/analysis/policypure"
	"repro/internal/analysis/poollife"
	"repro/internal/analysis/unitchecker"
)

var analyzers = []*analysis.Analyzer{
	policypure.Analyzer,
	detfree.Analyzer,
	poollife.Analyzer,
	errtyped.Analyzer,
}

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// `go vet` speaks the unitchecker protocol: -flags, -V=full, or a
	// single *.cfg argument. Anything else is a standalone invocation
	// with package patterns.
	if unitchecker.IsCfgArgs(args) || hasProtocolFlag(args) {
		if err := unitchecker.Main(progname, args, analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(2)
		}
		return
	}
	os.Exit(standalone(progname, args))
}

func hasProtocolFlag(args []string) bool {
	for _, a := range args {
		switch a {
		case "-flags", "--flags", "-V=full", "--V=full":
			return true
		}
	}
	return false
}

func standalone(progname string, args []string) int {
	selected, patterns := unitchecker.SelectByFlags(analyzers, args)
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := load.New(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	exit := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			exit = 2
			continue
		}
		for _, a := range selected {
			diags, err := analysis.RunAnalyzer(a, loader.Fset(), pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
				exit = 2
				continue
			}
			for _, d := range diags {
				fmt.Printf("%s: %s [%s]\n", loader.Fset().Position(d.Pos), d.Message, a.Name)
				if exit == 0 {
					exit = 1
				}
			}
		}
	}
	return exit
}
