package repro

import (
	"io"
	"net/http"

	"repro/internal/baseline"
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/order"
	"repro/internal/perturb"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/tree"
	"repro/internal/workload"
)

// Core model types.
type (
	// Tree is a rooted in-tree of tasks (see internal/tree).
	Tree = tree.Tree
	// NodeID identifies a task.
	NodeID = tree.NodeID
	// TreeBuilder constructs trees incrementally, top-down.
	TreeBuilder = tree.Builder
	// Order is a task priority, optionally backed by a topological
	// sequence.
	Order = order.Order
	// Scheduler is the dynamic scheduling policy driven by the simulator
	// or the live executor.
	Scheduler = core.Scheduler
	// SimResult summarises a simulated execution.
	SimResult = sim.Result
	// SimOptions tunes a simulation.
	SimOptions = sim.Options
	// ExecResult summarises a live execution.
	ExecResult = executor.Result
	// Task is the user work body for live execution.
	Task = executor.Task
	// Instance is a named workload tree.
	Instance = workload.Instance
	// ErrDeadlock is the typed no-progress error shared by the simulator
	// and the live executor; match it with errors.As.
	ErrDeadlock = core.ErrDeadlock
	// PerturbModel is a named duration-perturbation model for the
	// robustness suite (see internal/perturb).
	PerturbModel = perturb.Model
	// ServiceOptions configures the scheduling service (see
	// internal/service and cmd/treeschedd).
	ServiceOptions = service.Options
	// ServiceStats is the service's /statsz payload.
	ServiceStats = service.Stats
)

// None is the absent node (parent of the root).
const None = tree.None

// NewTree builds a tree from parallel attribute arrays; parent[i] is the
// parent of task i (None for the root).
func NewTree(parent []NodeID, exec, out, time []float64) (*Tree, error) {
	return tree.New(parent, exec, out, time)
}

// NewTreeBuilder returns a Builder with capacity for n nodes.
func NewTreeBuilder(n int) *TreeBuilder { return tree.NewBuilder(n) }

// ReadTree parses the .tree text format and validates the result:
// beyond the parser's structural checks it rejects NaN or negative
// attributes, which the schedulers are not defined on. Inputs from
// untrusted sources go through this entry point (internal callers that
// deliberately construct degenerate trees can use the internal parser).
func ReadTree(r io.Reader) (*Tree, error) {
	t, err := tree.Read(r)
	return validatedTree(t, err)
}

// ReadTreeFile reads a .tree file, validating like ReadTree.
func ReadTreeFile(path string) (*Tree, error) {
	t, err := tree.ReadFile(path)
	return validatedTree(t, err)
}

// validatedTree chains attribute validation onto a parse result, so
// both public readers share one definition of "acceptable input".
func validatedTree(t *Tree, err error) (*Tree, error) {
	if err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTree serialises a tree in the .tree text format.
func WriteTree(w io.Writer, t *Tree) error { return tree.Write(w, t) }

// WriteTreeFile writes a tree to a .tree file.
func WriteTreeFile(path string, t *Tree) error { return tree.WriteFile(path, t) }

// Traversal orders (§3, §7.2 and Appendix A of the paper).

// MinMemPostOrder returns Liu's peak-memory-minimising postorder (memPO)
// and its sequential peak memory — the "minimum memory" every experiment
// normalises by.
func MinMemPostOrder(t *Tree) (*Order, float64) { return order.MinMemPostOrder(t) }

// OptSeq returns the optimal sequential traversal (not necessarily a
// postorder) minimising peak memory, and its peak.
func OptSeq(t *Tree) (*Order, float64) { return order.OptSeq(t) }

// PerfPostOrder returns the parallel-performance postorder (perfPO).
func PerfPostOrder(t *Tree) *Order { return order.PerfPostOrder(t) }

// CriticalPathOrder returns tasks by decreasing bottom-level (CP); an
// execution order, not a topological one.
func CriticalPathOrder(t *Tree) *Order { return order.CriticalPathOrder(t) }

// AvgMemPostOrder returns the average-memory-minimising postorder.
func AvgMemPostOrder(t *Tree) *Order { return order.AvgMemPostOrder(t) }

// OrderByName computes the named order ("memPO", "perfPO", "CP",
// "OptSeq", "naturalPO", "avgMemPO").
func OrderByName(t *Tree, name string) (*Order, float64, error) { return order.ByName(t, name) }

// PeakMemory returns the peak memory of a sequential execution of seq.
func PeakMemory(t *Tree, seq []NodeID) (float64, error) { return order.PeakMemory(t, seq) }

// Schedulers.

// NewMemBooking builds the paper's MemBooking scheduler for memory bound
// m, activation order ao (topological) and execution order eo.
func NewMemBooking(t *Tree, m float64, ao, eo *Order) (Scheduler, error) {
	return core.NewMemBooking(t, m, ao, eo)
}

// NewActivation builds the baseline Activation scheduler (Agullo et al.).
func NewActivation(t *Tree, m float64, ao, eo *Order) (Scheduler, error) {
	return baseline.NewActivation(t, m, ao, eo)
}

// NewMemBookingRedTree builds the reduction-tree booking baseline. The
// returned scheduler must be executed on its transformed tree, available
// via SchedulerTree.
func NewMemBookingRedTree(t *Tree, m float64, ao, eo *Order) (*baseline.MemBookingRedTree, error) {
	return baseline.NewMemBookingRedTree(t, m, ao, eo)
}

// Simulate runs the scheduler on p processors with the discrete-event
// simulator, auditing that the model memory stays within bound m.
func Simulate(t *Tree, p int, s Scheduler, m float64) (*SimResult, error) {
	return sim.Run(t, p, s, &sim.Options{CheckMemory: true, Bound: m})
}

// SimulateOpts runs a simulation with full control over the options.
func SimulateOpts(t *Tree, p int, s Scheduler, opts *SimOptions) (*SimResult, error) {
	return sim.Run(t, p, s, opts)
}

// Execute runs the tree for real on a pool of worker goroutines, with
// the scheduler deciding dynamically which tasks may start.
func Execute(t *Tree, s Scheduler, workers int, task Task) (*ExecResult, error) {
	return executor.Run(t, s, workers, task)
}

// Duration uncertainty (DESIGN.md §6).

// PerturbModels returns the default duration-perturbation grid:
// lognormal and uniform multiplicative noise, heavy-tail stragglers, a
// bimodal fast/slow split and zero-duration degenerates.
func PerturbModels() []PerturbModel { return perturb.DefaultModels() }

// Realise returns a perturbed realisation of t under model m: same
// shape and data sizes, durations scaled by seeded per-task factors.
// Schedulers built from the nominal t (and its orders and bounds) can
// execute the realisation — the information asymmetry of the paper's
// dynamic-scheduling claim.
func Realise(t *Tree, m PerturbModel, seed uint64) (*Tree, error) {
	return perturb.Realise(t, m, seed)
}

// Serving (DESIGN.md §7).

// NewServiceHandler returns the scheduling service's HTTP handler
// (POST /schedule, GET /healthz, GET /statsz) — the API that
// cmd/treeschedd serves. nil opts selects the defaults. Embed it in an
// existing mux to serve scheduling next to other endpoints.
func NewServiceHandler(opts *ServiceOptions) http.Handler {
	return service.New(opts).Handler()
}

// Lower bounds (§6).

// ClassicalLowerBound returns max(total work / p, critical path).
func ClassicalLowerBound(t *Tree, p int) float64 { return bounds.Classical(t, p) }

// MemoryLowerBound returns the paper's memory-aware makespan bound
// (Theorem 3): (1/M) Σ MemNeeded(i)·t_i.
func MemoryLowerBound(t *Tree, m float64) (float64, error) { return bounds.Memory(t, m) }

// BestLowerBound returns the tighter of the two bounds.
func BestLowerBound(t *Tree, p int, m float64) (float64, error) { return bounds.Best(t, p, m) }

// Workloads (§7.1).

// SyntheticTree generates one tree with the paper's synthetic
// distribution (degrees in 1..5, truncated-exponential edge weights).
func SyntheticTree(seed uint64, nodes int) (*Tree, error) {
	return workload.Synthetic(workload.NewRNG(seed), workload.SyntheticOptions{Nodes: nodes})
}

// SyntheticCorpus generates count trees of each size.
func SyntheticCorpus(seed uint64, count int, sizes []int) []Instance {
	return workload.SyntheticCorpus(seed, count, sizes)
}

// AssemblyTreeFromGrid2D factors an n×n 5-point grid under nested
// dissection and returns its assembly tree.
func AssemblyTreeFromGrid2D(n, amalgamation int) (*Tree, error) {
	p, coords := sparse.Grid2D(n, n)
	res, err := sparse.AssemblyTree(p, sparse.NestedDissection(coords, 8),
		&sparse.AssemblyOptions{Amalgamation: amalgamation})
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}

// AssemblyTreeFromGrid3D factors an n×n×n 7-point grid under nested
// dissection and returns its assembly tree.
func AssemblyTreeFromGrid3D(n, amalgamation int) (*Tree, error) {
	p, coords := sparse.Grid3D(n, n, n)
	res, err := sparse.AssemblyTree(p, sparse.NestedDissection(coords, 12),
		&sparse.AssemblyOptions{Amalgamation: amalgamation})
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}
