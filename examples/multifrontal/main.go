// Multifrontal: the paper's motivating application. Factor a 2D Poisson
// matrix (64×64 five-point grid) symbolically, build its assembly tree,
// and compare the three schedulers across memory bounds — a miniature of
// Figure 2.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	t, err := repro.AssemblyTreeFromGrid2D(64, 8)
	if err != nil {
		log.Fatal(err)
	}
	ao, minMem := repro.MinMemPostOrder(t)
	fmt.Printf("assembly tree of a 64x64 grid: %d fronts, minimum memory %.3g entries\n",
		t.Len(), minMem)

	const p = 8
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mem/min\tActivation\tRedTree\tMemBooking\t(normalised makespan; --- = cannot complete)")
	for _, factor := range []float64{1, 1.2, 1.5, 2, 3, 5, 10} {
		m := factor * minMem
		lb, err := repro.BestLowerBound(t, p, m)
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%.1f", factor)
		// Activation.
		if s, err := repro.NewActivation(t, m, ao, ao); err == nil {
			if res, err := repro.Simulate(t, p, s, m); err == nil {
				row += fmt.Sprintf("\t%.3f", res.Makespan/lb)
			} else {
				row += "\t---"
			}
		}
		// RedTree (runs on its transformed tree).
		if rs, err := repro.NewMemBookingRedTree(t, m, ao, ao); err == nil {
			if res, err := repro.Simulate(rs.Tree(), p, rs, m); err == nil {
				row += fmt.Sprintf("\t%.3f", res.Makespan/lb)
			} else {
				row += "\t---"
			}
		}
		// MemBooking.
		if s, err := repro.NewMemBooking(t, m, ao, ao); err == nil {
			if res, err := repro.Simulate(t, p, s, m); err == nil {
				row += fmt.Sprintf("\t%.3f", res.Makespan/lb)
			} else {
				row += "\t---"
			}
		}
		fmt.Fprintln(w, row+"\t")
	}
	w.Flush()
	fmt.Println("\nMemBooking approaches the lower bound with a fraction of the memory")
	fmt.Println("the other heuristics need — the paper's headline result.")
}
