// Moldable: the paper's §8 extension in action. The root fronts of an
// assembly tree concentrate most of the flops; giving them several
// processors (Amdahl speedup, extra workspace memory per processor)
// resolves the end-of-tree serialisation — but only when the memory
// bound can afford the workspaces. This example sweeps the memory bound
// and shows molding degrading gracefully to the rigid schedule.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/sim"
)

func main() {
	t, err := repro.AssemblyTreeFromGrid2D(96, 8)
	if err != nil {
		log.Fatal(err)
	}
	ao, minMem := repro.MinMemPostOrder(t)
	prof := moldable.DefaultProfile(t)
	const p = 8

	fmt.Printf("assembly tree: %d fronts; %d processors; tasks moldable via Amdahl profiles\n\n", t.Len(), p)
	fmt.Println("mem/min  rigid     moldable  speedup  wide-tasks  max-width")
	for _, factor := range []float64{1, 1.25, 1.5, 2, 3, 5} {
		m := factor * minMem
		rigid, err := core.NewMemBooking(t, m, ao, ao)
		if err != nil {
			log.Fatal(err)
		}
		rres, err := sim.Run(t, p, rigid, &sim.Options{CheckMemory: true, Bound: m})
		if err != nil {
			log.Fatal(err)
		}
		ms, err := moldable.NewMemBookingMoldable(t, m, ao, ao, prof, p)
		if err != nil {
			log.Fatal(err)
		}
		mres, err := moldable.Run(t, p, ms, prof, &moldable.Options{CheckMemory: true, Bound: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %-9.4g %-9.4g %-8.2f %-11d %d\n",
			factor, rres.Makespan, mres.Makespan,
			rres.Makespan/mres.Makespan, mres.WideTasks, mres.MaxWidth)
	}
	fmt.Println("\nWide allocations appear as soon as the bound can afford their")
	fmt.Println("workspaces; under the minimum bound the schedule stays rigid-safe.")
}
