// Workflow: schedule a large data-intensive scientific workflow (a
// synthetic in-tree of 20 000 tasks with heavy intermediate files, §7.1
// distribution) on a machine whose RAM holds only a sliver of the total
// data. Shows how the choice of execution order (EO) and the activation
// policy interact — a miniature of Figures 8/10.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	t, err := repro.SyntheticTree(42, 20000)
	if err != nil {
		log.Fatal(err)
	}
	ao, minMem := repro.MinMemPostOrder(t)
	total := 0.0
	for i := 0; i < t.Len(); i++ {
		total += t.Out(repro.NodeID(i))
	}
	fmt.Printf("workflow: %d tasks, %.3g units of intermediate data, min resident set %.3g (%.2f%%)\n",
		t.Len(), total, minMem, 100*minMem/total)

	const p = 16
	m := 2 * minMem
	lb, err := repro.BestLowerBound(t, p, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RAM budget: 2x the minimum; %d workers; makespan lower bound %.4g\n\n", p, lb)

	cp := repro.CriticalPathOrder(t)
	type combo struct {
		name   string
		sched  repro.Scheduler
		onTree *repro.Tree
	}
	var combos []combo
	mk := func(name string, s repro.Scheduler, err error, tr *repro.Tree) {
		if err != nil {
			log.Fatal(err)
		}
		combos = append(combos, combo{name, s, tr})
	}
	s1, e1 := repro.NewActivation(t, m, ao, ao)
	mk("Activation  EO=memPO", s1, e1, t)
	s2, e2 := repro.NewActivation(t, m, ao, cp)
	mk("Activation  EO=CP   ", s2, e2, t)
	s3, e3 := repro.NewMemBooking(t, m, ao, ao)
	mk("MemBooking  EO=memPO", s3, e3, t)
	s4, e4 := repro.NewMemBooking(t, m, ao, cp)
	mk("MemBooking  EO=CP   ", s4, e4, t)

	for _, c := range combos {
		res, err := repro.Simulate(c.onTree, p, c.sched, m)
		if err != nil {
			fmt.Printf("%s  cannot complete within the budget (%v)\n", c.name, err)
			continue
		}
		fmt.Printf("%s  makespan %.4g (%.3fx LB)  memory used %.1f%%  sched overhead %v\n",
			c.name, res.Makespan, res.Makespan/lb, 100*res.PeakMem/m, res.SchedTime)
	}
}
