// Quickstart: build a small task tree by hand, compute the safe
// activation order, and schedule it with MemBooking on 2 processors
// under the tightest possible memory bound.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A toy elimination tree:
	//
	//            root (n=2, f=4)
	//           /    \
	//        a(n=1,f=3)   b(n=1,f=2)
	//        /   \          |
	//      c(f=2) d(f=2)   e(f=3)
	//
	// Processing a needs f_c + f_d + n_a + f_a = 2+2+1+3 = 8.
	b := repro.NewTreeBuilder(6)
	root := b.AddRoot(2, 4, 3.0)
	a := b.Add(root, 1, 3, 2.0)
	bb := b.Add(root, 1, 2, 2.0)
	b.Add(a, 0, 2, 1.0)  // c
	b.Add(a, 0, 2, 1.0)  // d
	b.Add(bb, 0, 3, 1.5) // e
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// memPO is both the activation order (it guarantees termination) and
	// the execution priority.
	ao, minMem := repro.MinMemPostOrder(t)
	fmt.Printf("tree with %d tasks, minimum sequential memory %.0f\n", t.Len(), minMem)

	// Schedule with the exact minimum memory: Theorem 1 guarantees
	// completion no matter how many processors run.
	sched, err := repro.NewMemBooking(t, minMem, ao, ao)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Simulate(t, 2, sched, minMem)
	if err != nil {
		log.Fatal(err)
	}
	lb, _ := repro.BestLowerBound(t, 2, minMem)
	fmt.Printf("makespan %.2f on 2 processors (lower bound %.2f)\n", res.Makespan, lb)
	fmt.Printf("peak memory used %.0f of %.0f budget, peak booked %.0f\n",
		res.PeakMem, minMem, res.PeakBooked)

	// Double the memory and the tree parallelises further.
	sched2, _ := repro.NewMemBooking(t, 2*minMem, ao, ao)
	res2, err := repro.Simulate(t, 2, sched2, 2*minMem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with 2x memory: makespan %.2f (%.0f%% faster)\n",
		res2.Makespan, 100*(res.Makespan-res2.Makespan)/res.Makespan)
}
