// Runtime: execute a task tree for real. Worker goroutines allocate
// genuine buffers for their task's data (scaled down to bytes), burn CPU
// proportional to the task's work, and a MemBooking scheduler — fed only
// the tree shape and data sizes, never the durations — decides live
// which task starts next. A hard allocation limiter proves the Theorem 1
// guarantee holds in a real concurrent execution, not just in the
// simulator.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
	"repro/internal/executor"
)

func main() {
	t, err := repro.AssemblyTreeFromGrid2D(48, 8)
	if err != nil {
		log.Fatal(err)
	}
	ao, minMem := repro.MinMemPostOrder(t)
	fmt.Printf("live run: %d fronts, memory budget = minimum (%.3g entries)\n", t.Len(), minMem)

	sched, err := repro.NewMemBooking(t, minMem, ao, repro.CriticalPathOrder(t))
	if err != nil {
		log.Fatal(err)
	}

	// Every unit of model memory becomes one real byte; the limiter
	// rejects any allocation that would cross the budget.
	lim := executor.NewMemoryLimiter(minMem)
	var mu sync.Mutex
	buffers := make(map[repro.NodeID][]byte) // live output buffers
	freed := make(map[repro.NodeID]bool)

	task := func(id repro.NodeID) error {
		need := t.Exec(id) + t.Out(id)
		if err := lim.Alloc(need); err != nil {
			return fmt.Errorf("front %d: %w", id, err)
		}
		buf := make([]byte, int(need))
		// "Factorize": touch the buffer proportionally to the work.
		passes := 1 + int(t.Time(id)*2e5)
		for p := 0; p < passes; p++ {
			for i := range buf {
				buf[i]++
			}
		}
		mu.Lock()
		// Keep only the output alive; free the execution data and the
		// children's inputs.
		buffers[id] = buf[:int(t.Out(id))]
		lim.Free(t.Exec(id))
		for _, c := range t.Children(id) {
			if !freed[c] {
				freed[c] = true
				lim.Free(t.Out(c))
				delete(buffers, c)
			}
		}
		if t.Parent(id) == repro.None {
			lim.Free(t.Out(id))
			delete(buffers, id)
		}
		mu.Unlock()
		return nil
	}

	res, err := repro.Execute(t, sched, 8, task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d tasks in %v on 8 workers\n", res.Tasks, res.Wall.Round(1e6))
	fmt.Printf("real allocation peak: %.3g of %.3g budget (%.1f%%) — never exceeded\n",
		lim.Peak(), minMem, 100*lim.Peak()/minMem)
	fmt.Printf("scheduler booked at most %.3g\n", res.PeakBooked)
}
