package repro_test

import (
	"fmt"

	"repro"
)

// The basic flow: build a tree, pick the safe activation order, schedule
// under the minimum possible memory.
func Example() {
	b := repro.NewTreeBuilder(3)
	root := b.AddRoot(1, 4, 2) // n=1, f=4, t=2
	b.Add(root, 0, 3, 1)
	b.Add(root, 0, 2, 1)
	t, _ := b.Build()

	ao, minMem := repro.MinMemPostOrder(t)
	s, _ := repro.NewMemBooking(t, minMem, ao, ao)
	res, _ := repro.Simulate(t, 2, s, minMem)
	fmt.Printf("makespan %.0f with memory %.0f\n", res.Makespan, minMem)
	// Output: makespan 3 with memory 10
}

// OptSeq can beat any postorder; it never loses to memPO.
func ExampleOptSeq() {
	t, _ := repro.SyntheticTree(1, 100)
	_, poPeak := repro.MinMemPostOrder(t)
	_, optPeak := repro.OptSeq(t)
	fmt.Println(optPeak <= poPeak)
	// Output: true
}

// The memory-aware lower bound (Theorem 3) can dominate the classical
// bound when memory is scarce and processors plentiful.
func ExampleMemoryLowerBound() {
	t, _ := repro.SyntheticTree(2, 2000)
	_, minMem := repro.MinMemPostOrder(t)
	classical := repro.ClassicalLowerBound(t, 32)
	memory, _ := repro.MemoryLowerBound(t, minMem)
	fmt.Println(memory > classical)
	// Output: true
}

// Activation requires more memory headroom than MemBooking to extract
// the same parallelism: compare peak booked memory on a chain.
func ExampleNewActivation() {
	// A chain: no two tasks can ever run together.
	b := repro.NewTreeBuilder(3)
	n0 := b.AddRoot(2, 3, 1)
	n1 := b.Add(n0, 2, 3, 1)
	b.Add(n1, 2, 3, 1)
	t, _ := b.Build()

	ao, _ := repro.MinMemPostOrder(t)
	act, _ := repro.NewActivation(t, 1000, ao, ao)
	resA, _ := repro.Simulate(t, 4, act, 1000)
	mb, _ := repro.NewMemBooking(t, 1000, ao, ao)
	resB, _ := repro.Simulate(t, 4, mb, 1000)
	fmt.Printf("Activation books %.0f, MemBooking books %.0f\n",
		resA.PeakBooked, resB.PeakBooked)
	// Output: Activation books 15, MemBooking books 8
}
